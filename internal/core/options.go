package core

import (
	"repro/internal/relation"
	"repro/internal/storage"
	"repro/internal/tupleset"
)

// InitStrategy selects how the Incomplete list of pass i of the
// full-disjunction driver is initialised (Section 7, "Minimizing
// repeated work"). All strategies produce the same full disjunction;
// they differ in how much work the later passes repeat.
type InitStrategy int

const (
	// InitSingletons is the textbook initialisation of Fig 1: pass i
	// seeds Incomplete with {t} for every t ∈ Ri and scans the whole
	// database. Results containing a tuple of an earlier relation are
	// suppressed by the driver (they were printed by an earlier pass).
	InitSingletons InitStrategy = iota
	// InitSeeded is the second §7 option: pass i seeds Incomplete with
	// the previously printed tuple sets that contain a tuple of Ri,
	// plus {t} for every t ∈ Ri not covered by a previous result; scans
	// are restricted to tuples of Ri..Rn and results subsumed by a
	// previously printed set are suppressed.
	InitSeeded
	// InitProjected is the third §7 option: previously printed sets are
	// projected onto relations Ri..Rn (keeping the connected component
	// of their Ri tuple), extended, and deduplicated before seeding;
	// otherwise as InitSeeded.
	InitProjected
)

// String names the strategy.
func (s InitStrategy) String() string {
	switch s {
	case InitSingletons:
		return "singletons"
	case InitSeeded:
		return "seeded"
	case InitProjected:
		return "projected"
	default:
		return "unknown"
	}
}

// TraceFunc observes the state of the lists after each GetNextResult
// call; it reproduces Table 3 of the paper. The slices are snapshots
// and may be retained.
type TraceFunc func(iteration int, printed *tupleset.Set, incomplete, complete []*tupleset.Set)

// Options configures the algorithms.
type Options struct {
	// UseIndex enables the §7 hash index: Complete and Incomplete are
	// bucketed by their tuple from the seed relation, so the searches
	// of GETNEXTRESULT lines 11 and 14 touch only candidate sets that
	// could possibly match.
	UseIndex bool
	// BlockSize is the number of tuples fetched per simulated page read
	// during database scans (block-based execution, §7). Zero or one
	// means tuple-at-a-time execution.
	BlockSize int
	// Pool, when non-nil, routes page fetches through a simulated LRU
	// buffer pool: only misses count as PageReads, and the pool's
	// hit/miss counters expose the caching behaviour a real database
	// buffer would show under the algorithm's scan pattern.
	Pool *storage.BufferPool
	// Strategy selects the Incomplete initialisation of the
	// full-disjunction driver.
	Strategy InitStrategy
	// Trace, when non-nil, receives a snapshot after every
	// GetNextResult call of a single-seed enumeration.
	Trace TraceFunc
}

func (o Options) blockSize() int {
	if o.BlockSize < 1 {
		return 1
	}
	return o.BlockSize
}

// scanner walks database tuples in deterministic order while counting
// tuples and simulated page reads. minRel restricts the scan to
// relations minRel..n-1 (used by the seeded/projected strategies).
// With a buffer pool attached, only buffer misses count as page reads.
type scanner struct {
	db     *relation.Database
	block  int
	minRel int
	stats  *Stats
	pool   *storage.BufferPool
}

// forEach visits every tuple in scope; fn returning false stops early.
func (sc *scanner) forEach(fn func(relation.Ref) bool) {
	for r := sc.minRel; r < sc.db.NumRelations(); r++ {
		n := sc.db.Relation(r).Len()
		for i := 0; i < n; i++ {
			if i%sc.block == 0 {
				if sc.pool != nil {
					if !sc.pool.Fetch(storage.PageID{Rel: int32(r), Block: int32(i / sc.block)}) {
						sc.stats.PageReads++
					}
				} else {
					sc.stats.PageReads++
				}
			}
			sc.stats.TuplesScanned++
			if !fn(relation.Ref{Rel: int32(r), Idx: int32(i)}) {
				return
			}
		}
	}
}
