package core

import (
	"context"

	"repro/internal/relation"
	"repro/internal/tupleset"
)

// FDi computes FDi(R): all tuple sets of the full disjunction that
// contain a tuple of relation seed (Fig 1 executed to completion).
func FDi(db *relation.Database, seed int, opts Options) ([]*tupleset.Set, Stats, error) {
	u := tupleset.NewUniverse(db)
	e, err := NewEnumerator(u, seed, opts)
	if err != nil {
		return nil, Stats{}, err
	}
	out := e.All()
	return out, e.Stats(), nil
}

// FullDisjunction computes FD(R) = ⋃i FDi(R) without duplicates,
// using the initialisation strategy selected in opts.
func FullDisjunction(db *relation.Database, opts Options) ([]*tupleset.Set, Stats, error) {
	var out []*tupleset.Set
	stats, err := Stream(db, opts, func(t *tupleset.Set) bool {
		out = append(out, t)
		return true
	})
	return out, stats, err
}

// Stream computes FD(R) and hands each result to yield as soon as it is
// produced — the incremental behaviour that places the problem in PINC
// (Corollary 4.11). Enumeration stops early when yield returns false.
//
// Stream is the push-style rendering of a Cursor: the textbook restart
// driver (INCREMENTALFD(R, i) for every i, suppressing results whose
// minimal relation was handled by an earlier pass — the rule below
// Corollary 4.7) or the §7 seeded/projected drivers (pass i scans only
// Ri..Rn, seeds Incomplete from previously printed results, and
// suppresses results contained in a printed set; see DESIGN.md for the
// correctness argument).
func Stream(db *relation.Database, opts Options, yield func(*tupleset.Set) bool) (Stats, error) {
	c, err := NewCursor(context.Background(), db, opts)
	if err != nil {
		return Stats{}, err
	}
	defer c.Close()
	for {
		t, ok := c.Next()
		if !ok {
			return c.Stats(), c.Err()
		}
		if !yield(t) {
			return c.Stats(), nil
		}
	}
}

// seedInit builds the initial Incomplete contents for pass i of the
// seeded strategies.
func seedInit(u *tupleset.Universe, i int, opts Options, printed *CompleteStore, stats *Stats) []*tupleset.Set {
	covered := make(map[int32]bool)
	var init []*tupleset.Set
	for _, s := range printed.Sets() {
		ref, ok := s.Member(i)
		if !ok {
			continue
		}
		covered[ref.Idx] = true
		switch opts.Strategy {
		case InitSeeded:
			// Option 2: seed with the previous result itself.
			init = append(init, s.Clone())
		case InitProjected:
			// Option 3: project the previous result onto relations
			// Ri..Rn, keep the connected component of its Ri tuple, and
			// extend it with suffix tuples to a suffix-maximal set.
			proj := projectSuffix(u, s, i)
			extendSuffix(u, proj, i, opts, stats)
			init = append(init, proj)
		}
	}
	if opts.Strategy == InitProjected {
		init = dedupContained(init)
	}
	rel := u.DB.Relation(i)
	for t := 0; t < rel.Len(); t++ {
		if !covered[int32(t)] {
			init = append(init, u.Singleton(relation.Ref{Rel: int32(i), Idx: int32(t)}))
		}
	}
	return init
}

// projectSuffix restricts s to relations i..n-1 and keeps the connected
// component containing s's tuple of relation i.
func projectSuffix(u *tupleset.Universe, s *tupleset.Set, i int) *tupleset.Set {
	words := u.Conn.Words()
	mask := make([]uint64, 2*words)
	comp := mask[words:]
	mask = mask[:words:words]
	for _, ref := range s.Refs() {
		if int(ref.Rel) >= i {
			mask[ref.Rel/64] |= 1 << (uint(ref.Rel) % 64)
		}
	}
	u.Conn.ComponentOfBitsInto(comp, mask, i)
	out := u.NewSet()
	for _, ref := range s.Refs() {
		if comp[ref.Rel/64]&(1<<(uint(ref.Rel)%64)) != 0 {
			out.Add(ref)
		}
	}
	return out
}

// extendSuffix maximally extends s with tuples of relations i..n-1
// (the loop of GETNEXTRESULT lines 2–6 restricted to the suffix).
func extendSuffix(u *tupleset.Universe, s *tupleset.Set, i int, opts Options, stats *Stats) {
	sc := Scanner{db: u.DB, block: opts.blockSize(), minRel: i, stats: stats,
		pool: opts.Pool, useJoinIndex: opts.UseJoinIndex}
	var sig tupleset.SigCounters
	defer stats.AddSig(&sig)
	for changed := true; changed; {
		changed = false
		sc.ForEachExtension(s, func(ref relation.Ref) bool {
			if s.Has(ref) {
				return true
			}
			stats.JCCChecks++
			if u.JCCWithTupleCounted(s, ref, &sig) {
				s.Add(ref)
				changed = true
			}
			return true
		})
	}
}

// dedupContained removes sets contained in another set of the slice
// (including duplicates), preserving order of the survivors.
func dedupContained(sets []*tupleset.Set) []*tupleset.Set {
	var out []*tupleset.Set
	for i, s := range sets {
		contained := false
		for j, t := range sets {
			if i == j {
				continue
			}
			if t.ContainsAll(s) && (s.Len() < t.Len() || j < i) {
				// Tie-break equal sets by position so exactly one copy
				// survives.
				contained = true
				break
			}
		}
		if !contained {
			out = append(out, s)
		}
	}
	return out
}

// minRelation returns the smallest relation index with a member in t.
// The drivers use it for cross-pass duplicate suppression: a result is
// emitted only by the pass of its minimal relation.
func minRelation(t *tupleset.Set) int {
	for _, ref := range t.Refs() {
		return int(ref.Rel) // Refs is in relation order
	}
	return -1
}
