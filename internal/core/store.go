package core

import (
	"repro/internal/relation"
	"repro/internal/tupleset"
)

// CompleteStore holds the tuple sets that have been printed (the
// Complete list of Fig 1). It supports the containment test of
// GETNEXTRESULT line 11: is T' contained in some stored set?
//
// With indexing enabled the store is bucketed by member tuple, so the
// containment test for T' inspects only sets sharing T's anchor tuple —
// the §7 optimisation. Storage is append-only; by Theorem 4.6 no
// duplicate is ever added during one enumeration.
type CompleteStore struct {
	u    *tupleset.Universe
	sets []*tupleset.Set
	// index[rel][idx] lists the ids of stored sets containing tuple
	// (rel, idx) — a dense two-level posting table (O(db tuples) slice
	// headers), so the hot containment probe indexes two arrays instead
	// of hashing a map key.
	index    [][][]int
	useIndex bool
}

// NewCompleteStore creates an empty store.
func NewCompleteStore(u *tupleset.Universe, useIndex bool) *CompleteStore {
	cs := &CompleteStore{u: u, useIndex: useIndex}
	if useIndex {
		cs.index = make([][][]int, u.DB.NumRelations())
		for r := range cs.index {
			cs.index[r] = make([][]int, u.DB.Relation(r).Len())
		}
	}
	return cs
}

// Len returns the number of stored sets.
func (cs *CompleteStore) Len() int { return len(cs.sets) }

// Sets returns the stored sets in insertion order; the slice must not
// be modified.
func (cs *CompleteStore) Sets() []*tupleset.Set { return cs.sets }

// Add stores s.
func (cs *CompleteStore) Add(s *tupleset.Set) {
	id := len(cs.sets)
	cs.sets = append(cs.sets, s)
	if cs.useIndex {
		for _, ref := range s.Refs() {
			cs.index[ref.Rel][ref.Idx] = append(cs.index[ref.Rel][ref.Idx], id)
		}
	}
}

// ContainsSuperset reports whether some stored set contains every tuple
// of t. anchor must be a member of t (the seed-relation tuple); with
// indexing the search scans the SHORTEST posting bucket among t's
// members — a superset of t must appear in every member's bucket, so
// the rarest member bounds the candidates, and a member with no bucket
// at all disproves containment outright. stats.ListScans counts the
// candidate sets examined.
func (cs *CompleteStore) ContainsSuperset(t *tupleset.Set, anchor relation.Ref, stats *Stats) bool {
	if cs.useIndex {
		bucket := cs.index[anchor.Rel][anchor.Idx]
		if len(bucket) == 0 {
			return false
		}
		if len(bucket) > 4 {
			// Worth looking for a rarer member before scanning.
			for r, n := 0, cs.u.DB.NumRelations(); r < n; r++ {
				ref, ok := t.Member(r)
				if !ok || ref == anchor {
					continue
				}
				ids := cs.index[ref.Rel][ref.Idx]
				if len(ids) == 0 {
					return false
				}
				if len(ids) < len(bucket) {
					bucket = ids
				}
			}
		}
		for _, id := range bucket {
			stats.ListScans++
			if cs.sets[id].ContainsAll(t) {
				return true
			}
		}
		return false
	}
	for _, s := range cs.sets {
		stats.ListScans++
		if s.ContainsAll(t) {
			return true
		}
	}
	return false
}

// node wraps a tuple set held in an IncompleteQueue. A node whose live
// flag is cleared has been popped and is skipped by searches.
type node struct {
	set  *tupleset.Set
	live bool
}

// IncompleteQueue is the Incomplete linked list of Fig 1. The paper's
// list discipline — reconstructed from the trace in Table 3 — is: tuple
// sets are removed from the front, and the sets created during one
// GETNEXTRESULT call are placed at the front as a group, in creation
// order, before the next removal. Push therefore stages new sets in a
// pending buffer which Flush moves to the front.
//
// The queue also supports the merge operation of GETNEXTRESULT lines
// 14–15 (replace a stored S by S ∪ T' when JCC(S ∪ T')). Every stored
// set contains exactly one tuple of the seed relation, and a merge
// never changes that tuple, so bucketing by it (UseIndex) is lossless
// for the merge search.
type IncompleteQueue struct {
	u    *tupleset.Universe
	seed int
	// items holds the main list with the FRONT at the END of the slice
	// (so Pop is an O(1) truncation and a group prepend is an append of
	// the reversed pending buffer).
	items   []*node
	pending []*node
	liveN   int
	// index[idx] lists the nodes whose seed-relation tuple is idx — a
	// dense per-tuple bucket table, directly indexed.
	index    [][]*node
	useIndex bool
}

// NewIncompleteQueue creates an empty queue for seed relation seed.
func NewIncompleteQueue(u *tupleset.Universe, seed int, useIndex bool) *IncompleteQueue {
	q := &IncompleteQueue{u: u, seed: seed, useIndex: useIndex}
	if useIndex {
		q.index = make([][]*node, u.DB.Relation(seed).Len())
	}
	return q
}

// Len returns the number of live sets in the queue (staged sets
// included).
func (q *IncompleteQueue) Len() int { return q.liveN }

// Push stages s for insertion at the front of the queue. s must contain
// a tuple of the seed relation. Call Flush to complete the insertion;
// staged sets are already visible to TryAbsorb.
func (q *IncompleteQueue) Push(s *tupleset.Set) {
	nd := &node{set: s, live: true}
	q.pending = append(q.pending, nd)
	q.liveN++
	if q.useIndex {
		ref, ok := s.Member(q.seed)
		if !ok {
			panic("core: incomplete set lacks seed-relation tuple")
		}
		q.index[ref.Idx] = append(q.index[ref.Idx], nd)
	}
}

// Flush moves the staged sets to the front of the queue, preserving
// creation order (the first set staged is the next to pop).
func (q *IncompleteQueue) Flush() {
	for i := len(q.pending) - 1; i >= 0; i-- {
		q.items = append(q.items, q.pending[i])
	}
	q.pending = q.pending[:0]
}

// Pop removes and returns the set at the front of the queue (Fig 2,
// line 1). ok is false when the queue is empty. Staged sets must be
// flushed first; Pop flushes automatically for safety.
func (q *IncompleteQueue) Pop() (*tupleset.Set, bool) {
	if len(q.pending) > 0 {
		q.Flush()
	}
	for len(q.items) > 0 {
		nd := q.items[len(q.items)-1]
		q.items = q.items[:len(q.items)-1]
		if nd.live {
			nd.live = false
			q.liveN--
			return nd.set, true
		}
	}
	return nil, false
}

// TryAbsorb implements lines 14–15 of GETNEXTRESULT: if the queue holds
// a set S with JCC(S ∪ t), S is replaced by S ∪ t in place and true is
// returned. anchor must be t's seed-relation tuple.
func (q *IncompleteQueue) TryAbsorb(t *tupleset.Set, anchor relation.Ref, stats *Stats) bool {
	var sig tupleset.SigCounters
	defer stats.AddSig(&sig)
	// Hoist t's signature check out of the bucket loop; stored sets are
	// rebuilt at most once each (the rebuild result is cached on the
	// set), so the loop body stays on the valid-signature fast path.
	tValid := q.u.EnsureSig(t, &sig)
	if q.useIndex {
		if q.absorbScan(q.index[anchor.Idx], t, tValid, stats, &sig) {
			return true
		}
		return false
	}
	if q.absorbScan(q.items, t, tValid, stats, &sig) {
		return true
	}
	return q.absorbScan(q.pending, t, tValid, stats, &sig)
}

func (q *IncompleteQueue) absorbScan(nodes []*node, t *tupleset.Set, tValid bool, stats *Stats, sig *tupleset.SigCounters) bool {
	for _, nd := range nodes {
		if !nd.live {
			continue
		}
		stats.ListScans++
		stats.JCCChecks++
		var joins bool
		if tValid && (nd.set.SigValid() || q.u.EnsureSig(nd.set, sig)) {
			sig.Hits++
			joins = q.u.UnionJCCValid(nd.set, t)
		} else {
			joins = q.u.OracleUnionJCC(nd.set, t)
		}
		if joins {
			// The queue owns its sets exclusively (pushed candidates
			// and seed clones), so the merge mutates in place.
			q.u.UnionInto(nd.set, t)
			return true
		}
	}
	return false
}

// Snapshot returns the live sets in front-to-back order, for tracing
// (Table 3). Staged sets appear first, in creation order.
func (q *IncompleteQueue) Snapshot() []*tupleset.Set {
	out := make([]*tupleset.Set, 0, q.liveN)
	for _, nd := range q.pending {
		if nd.live {
			out = append(out, nd.set.Clone())
		}
	}
	for i := len(q.items) - 1; i >= 0; i-- {
		if q.items[i].live {
			out = append(out, q.items[i].set.Clone())
		}
	}
	return out
}
