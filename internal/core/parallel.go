package core

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/relation"
	"repro/internal/tupleset"
)

// ParallelFullDisjunction computes FD(R) by running the n per-relation
// passes of the textbook driver concurrently. The passes of Fig 1 are
// independent by construction (each computes FDi(R) from scratch), so
// this is a safe engineering extension beyond the paper: results are
// deduplicated exactly as in the sequential driver (a result belongs to
// the pass of its minimal relation), and the output set is identical —
// only the order differs, so results are returned sorted by their
// canonical keys for determinism.
//
// workers ≤ 0 selects GOMAXPROCS. Streaming semantics (PINC) are
// sequential by nature; use Stream when incremental delivery matters
// more than total wall-clock time.
func ParallelFullDisjunction(db *relation.Database, opts Options, workers int) ([]*tupleset.Set, Stats, error) {
	if opts.Strategy != InitSingletons {
		return nil, Stats{}, fmt.Errorf("core: parallel execution requires the restart strategy (got %s)", opts.Strategy)
	}
	if opts.Trace != nil {
		return nil, Stats{}, fmt.Errorf("core: parallel execution does not support tracing")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	u := tupleset.NewUniverse(db)
	n := db.NumRelations()

	type passResult struct {
		seed  int
		sets  []*tupleset.Set
		stats Stats
		err   error
	}
	results := make([]passResult, n)
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			e, err := NewEnumerator(u, seed, opts)
			if err != nil {
				results[seed] = passResult{seed: seed, err: err}
				return
			}
			var kept []*tupleset.Set
			for {
				t, ok := e.Next()
				if !ok {
					break
				}
				if minRelation(t) == seed {
					kept = append(kept, t)
				}
			}
			results[seed] = passResult{seed: seed, sets: kept, stats: e.Stats()}
		}(i)
	}
	wg.Wait()

	var out []*tupleset.Set
	var total Stats
	for _, r := range results {
		if r.err != nil {
			return nil, total, r.err
		}
		out = append(out, r.sets...)
		s := r.stats
		s.Emitted = 0
		total.Add(s)
	}
	total.Emitted = len(out)
	tupleset.SortSets(db, out)
	return out, total, nil
}
