package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/relation"
	"repro/internal/tupleset"
)

// The per-relation passes of Fig 1 are independent by construction —
// each computes FDi(R) from scratch — and within one pass the seed
// singletons of Fig 1 lines 1–4 can be split into blocks: an
// enumeration seeded with the singletons of a block produces every
// result whose seed-relation member lies in the block (the extension
// and discovery walks of Fig 2 never depend on which other singletons
// were enqueued). Results produced by more than one task are
// deduplicated by ownership, the duplicate-avoidance rule below
// Corollary 4.7 refined to blocks: a result belongs to the pass of its
// minimal relation and, within that pass, to the block containing its
// seed-relation member.
//
// Splitting a pass does not divide its work the way splitting passes
// does — each block's enumeration still discovers candidates anchored
// anywhere in the seed relation — so blocks are cut only when there
// are more workers than relations, and never smaller than
// minTaskSeeds tuples.

// TaskEnumerator is one suspended enumeration run by a parallel
// worker: a source of tuple sets plus its execution counters. Both
// core.Enumerator and approx.Enumerator satisfy it.
type TaskEnumerator interface {
	Next() (*tupleset.Set, bool)
	Stats() Stats
}

// Task is one independent unit of a partitioned enumeration.
type Task struct {
	// Open starts the task's enumeration. It runs on a worker
	// goroutine; everything it touches must be shareable (a frozen
	// database, a Universe) or task-local.
	Open func() (TaskEnumerator, error)
	// Owns reports whether this task is the unique owner of a result
	// it produced. Partitions overlap (a task can produce results
	// seeded outside its block); exactly one task owns each result, so
	// the merged stream carries no duplicates.
	Owns func(*tupleset.Set) bool
	// Label names the task in observability output ("pass 2",
	// "pass 0 block 1/4", "approx pass 3"…). Optional.
	Label string
}

// TaskSpan reports one finished parallel task to a TaskObserver: its
// label, wall-clock extent, and the enumerator's own counters (Emitted
// here counts what the task's enumerator produced, before the
// ownership filter — the merged cursor's Emitted counts deliveries).
type TaskSpan struct {
	Label      string
	Start, End time.Time
	Stats      Stats
}

// TaskObserver receives a TaskSpan each time a parallel task finishes.
// It is invoked from worker goroutines, so implementations must be
// safe for concurrent use and cheap — they sit between a task's last
// result and the worker picking up its next task.
type TaskObserver func(TaskSpan)

// ParallelCursor merges the outputs of partitioned enumeration tasks,
// run on a bounded worker pool, into one pull cursor with the same
// Next/Err/Stats/Close semantics as the sequential Cursor. At most
// min(workers, len(tasks)) goroutines exist; they pull task indices
// from a shared queue, so a long task never strands idle workers while
// queued tasks wait (and task counts well above the worker count cost
// nothing). Cancelling ctx or calling Close stops every worker within
// one enumeration step; Close does not return before all of them have
// exited, so an early-closed cursor leaks no goroutines.
//
// Arrival order is whatever the interleaving produced — run-to-run
// nondeterministic — but the delivered set is exactly the union of the
// owned task outputs. Per-worker counters accumulate in task-local
// Stats and are folded under a lock once per finished task, never on
// the per-result path.
//
// A ParallelCursor is not safe for concurrent use by multiple
// consumers. Unlike the sequential cursors it holds goroutines while
// live: drain it, Close it, or cancel ctx — don't just drop it.
type ParallelCursor struct {
	parent context.Context
	cancel context.CancelFunc
	out    chan *tupleset.Set
	done   chan struct{} // closed after every worker has exited

	mu     sync.Mutex
	folded Stats // finished tasks' counters (Emitted zeroed)
	werr   error // first worker failure

	// consumer-goroutine state
	emitted int
	err     error
	closed  bool
}

// NewTaskCursor starts tasks on a pool of at most workers goroutines
// (≤0 selects GOMAXPROCS) and returns the merged cursor. A nil ctx
// means context.Background(). A non-nil obs receives one TaskSpan per
// finished task, from the worker goroutine that ran it; the clock is
// only read when obs is set, so the hook costs one nil check when
// observability is off.
func NewTaskCursor(ctx context.Context, tasks []Task, workers int, obs TaskObserver) *ParallelCursor {
	if ctx == nil {
		ctx = context.Background()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(tasks) {
		workers = len(tasks)
	}
	cctx, cancel := context.WithCancel(ctx)
	c := &ParallelCursor{
		parent: ctx,
		cancel: cancel,
		out:    make(chan *tupleset.Set, workers),
		done:   make(chan struct{}),
	}
	run := func(cctx context.Context, t Task) error {
		var start time.Time
		if obs != nil {
			start = time.Now()
		}
		e, err := t.Open()
		if err != nil {
			return err
		}
		defer func() {
			// Fold once per finished task — the per-result path touches
			// only the enumerator's own counters.
			s := e.Stats()
			if obs != nil {
				obs(TaskSpan{Label: t.Label, Start: start, End: time.Now(), Stats: s})
			}
			s.Emitted = 0
			c.mu.Lock()
			c.folded.Add(s)
			c.mu.Unlock()
		}()
		for {
			// One check per enumeration step, as in the sequential
			// cursor: a cancelled run stops within one GetNextResult
			// iteration without polling per scanned tuple.
			if cctx.Err() != nil {
				return nil
			}
			r, ok := e.Next()
			if !ok {
				return nil
			}
			if !t.Owns(r) {
				continue
			}
			select {
			case c.out <- r:
			case <-cctx.Done():
				return nil
			}
		}
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for cctx.Err() == nil {
				i := int(next.Add(1)) - 1
				if i >= len(tasks) {
					return
				}
				if err := run(cctx, tasks[i]); err != nil {
					c.mu.Lock()
					if c.werr == nil {
						c.werr = err
					}
					c.mu.Unlock()
					cancel()
					return
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(c.out)
		close(c.done)
	}()
	return c
}

// Next produces the next merged result, or ok=false when the
// enumeration is exhausted, closed, cancelled, or failed (check Err).
func (c *ParallelCursor) Next() (*tupleset.Set, bool) {
	if c.closed || c.err != nil {
		return nil, false
	}
	if err := c.parent.Err(); err != nil {
		// Cancelled between calls: report promptly instead of serving
		// results the workers had already buffered.
		c.err = err
		c.cancel()
		return nil, false
	}
	r, ok := <-c.out
	if !ok {
		// out closes only after every worker exited, so folded and
		// werr are final here.
		c.mu.Lock()
		werr := c.werr
		c.mu.Unlock()
		if werr != nil {
			c.err = werr
		} else if err := c.parent.Err(); err != nil {
			c.err = err
		}
		c.cancel()
		return nil, false
	}
	c.emitted++
	return r, true
}

// Err returns the error that terminated the enumeration, if any —
// including ctx.Err() after a cancellation. A voluntary Close is not
// an error.
func (c *ParallelCursor) Err() error { return c.err }

// Stats snapshots the counters accumulated so far: the folded totals
// of every finished task plus the cursor's own emission count.
// In-flight tasks contribute when they finish (after a drain or Close
// the snapshot is complete); Emitted counts delivered results, as in
// the sequential cursor.
func (c *ParallelCursor) Stats() Stats {
	c.mu.Lock()
	s := c.folded
	c.mu.Unlock()
	s.Emitted = c.emitted
	return s
}

// Close abandons the enumeration: every worker is cancelled and Close
// waits for all of them to exit (each stops within one enumeration
// step), so no goroutine outlives the cursor. Idempotent; Next returns
// ok=false afterwards.
func (c *ParallelCursor) Close() {
	if c.closed {
		return
	}
	c.closed = true
	c.cancel()
	<-c.done
}

// minTaskSeeds is the smallest seed block a pass is split into: below
// this the per-task fixed costs (stores, scanner, duplicated discovery
// work) outweigh the parallelism.
const minTaskSeeds = 8

// exactTasks partitions the restart-strategy enumeration of FD(R):
// one task per per-relation pass and, when workers exceed the number
// of relations, per block of seed singletons within a pass, so one
// skewed relation doesn't serialise the run. The partition itself
// comes from ExactLayout — the same layout fd.Explain reports — and
// this function only attaches the executable Open/Owns closures.
func exactTasks(u *tupleset.Universe, opts Options, workers int) []Task {
	layout := ExactLayout(u.DB, workers)
	tasks := make([]Task, 0, len(layout))
	for _, m := range layout {
		m := m
		tasks = append(tasks, Task{
			Label: m.Label,
			Open: func() (TaskEnumerator, error) {
				init := make([]*tupleset.Set, 0, m.Seeds())
				for i := m.SeedLo; i < m.SeedHi; i++ {
					init = append(init, u.Singleton(relation.Ref{Rel: int32(m.Pass), Idx: int32(i)}))
				}
				return NewSeededEnumerator(u, m.Pass, opts, init, 0)
			},
			Owns: func(t *tupleset.Set) bool {
				if minRelation(t) != m.Pass {
					return false
				}
				mem, ok := t.Member(m.Pass)
				return ok && int(mem.Idx) >= m.SeedLo && int(mem.Idx) < m.SeedHi
			},
		})
	}
	return tasks
}

// NewParallelCursor starts a parallel streaming enumeration of FD(R)
// on a pool of at most workers goroutines (≤0 selects GOMAXPROCS) and
// returns the merged cursor. Only the restart strategy partitions
// (the seeded/projected initialisations feed each pass from the
// previous one, which is inherently sequential), and the per-iteration
// hooks — Trace, a shared buffer Pool — are rejected rather than raced
// over.
func NewParallelCursor(ctx context.Context, db *relation.Database, opts Options, workers int) (*ParallelCursor, error) {
	if opts.Strategy != InitSingletons {
		return nil, fmt.Errorf("core: parallel execution requires the restart strategy (got %s)", opts.Strategy)
	}
	if opts.Trace != nil {
		return nil, fmt.Errorf("core: parallel execution does not support tracing")
	}
	if opts.Pool != nil {
		return nil, fmt.Errorf("core: parallel execution does not support a shared buffer pool")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	u := tupleset.NewUniverse(db)
	return NewTaskCursor(ctx, exactTasks(u, opts, workers), workers, opts.TaskObserver), nil
}

// ParallelFullDisjunction computes FD(R) on a bounded worker pool and
// returns the results sorted by their canonical keys, so the output is
// deterministic and set-identical to the sequential driver.
//
// Deprecated: this is the batch form of the streaming executor; use
// NewParallelCursor, or fd.Open with QueryOptions.Workers, which
// streams results as they merge instead of materialising the batch.
func ParallelFullDisjunction(db *relation.Database, opts Options, workers int) ([]*tupleset.Set, Stats, error) {
	c, err := NewParallelCursor(context.Background(), db, opts, workers)
	if err != nil {
		return nil, Stats{}, err
	}
	defer c.Close()
	var out []*tupleset.Set
	for {
		t, ok := c.Next()
		if !ok {
			break
		}
		out = append(out, t)
	}
	if err := c.Err(); err != nil {
		return nil, c.Stats(), err
	}
	tupleset.SortSets(db, out)
	return out, c.Stats(), nil
}
