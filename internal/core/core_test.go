package core

import (
	"fmt"
	"sort"
	"testing"

	"repro/internal/naive"
	"repro/internal/relation"
	"repro/internal/tupleset"
	"repro/internal/workload"
)

func formatAll(db *relation.Database, sets []*tupleset.Set) []string {
	out := make([]string, len(sets))
	for i, s := range sets {
		out[i] = s.Format(db)
	}
	sort.Strings(out)
	return out
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestTable2Reproduction checks that FD(Climates, Accommodations,
// Sites) is exactly the six tuple sets of Table 2, under every
// initialisation strategy and with and without the hash index.
func TestTable2Reproduction(t *testing.T) {
	want := workload.Table2()
	sort.Strings(want)
	for _, strategy := range []InitStrategy{InitSingletons, InitSeeded, InitProjected} {
		for _, useIndex := range []bool{false, true} {
			name := fmt.Sprintf("strategy=%s/index=%v", strategy, useIndex)
			t.Run(name, func(t *testing.T) {
				db := workload.Tourist()
				got, _, err := FullDisjunction(db, Options{Strategy: strategy, UseIndex: useIndex})
				if err != nil {
					t.Fatal(err)
				}
				gotStr := formatAll(db, got)
				if !equalStrings(gotStr, want) {
					t.Errorf("FD mismatch:\n got  %v\n want %v", gotStr, want)
				}
			})
		}
	}
}

// TestTable3Trace replays INCREMENTALFD({Climates, Accommodations,
// Sites}, 1) and checks the contents of Incomplete and Complete after
// every iteration against Table 3 of the paper.
func TestTable3Trace(t *testing.T) {
	db := workload.Tourist()
	u := tupleset.NewUniverse(db)

	type snapshot struct {
		incomplete []string
		complete   []string
	}
	var got []snapshot
	opts := Options{Trace: func(iter int, printed *tupleset.Set, inc, comp []*tupleset.Set) {
		snap := snapshot{}
		for _, s := range inc {
			snap.incomplete = append(snap.incomplete, s.Format(db))
		}
		for _, s := range comp {
			snap.complete = append(snap.complete, s.Format(db))
		}
		got = append(got, snap)
	}}
	e, err := NewEnumerator(u, 0, opts)
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, ok := e.Next(); !ok {
			break
		}
	}

	// Table 3 columns Iteration 1..6, compared in the exact top-to-
	// bottom order the paper prints: the list discipline (pop from the
	// front, place each iteration's new sets at the front as a group)
	// reproduces the trace verbatim.
	want := []snapshot{
		{ // Iteration 1
			incomplete: []string{"{c1, a2, s1}", "{c1, s2}", "{c2}", "{c3}"},
			complete:   []string{"{c1, a1}"},
		},
		{ // Iteration 2
			incomplete: []string{"{c1, s2}", "{c2}", "{c3}"},
			complete:   []string{"{c1, a1}", "{c1, a2, s1}"},
		},
		{ // Iteration 3
			incomplete: []string{"{c2}", "{c3}"},
			complete:   []string{"{c1, a1}", "{c1, a2, s1}", "{c1, s2}"},
		},
		{ // Iteration 4
			incomplete: []string{"{c2, s4}", "{c3}"},
			complete:   []string{"{c1, a1}", "{c1, a2, s1}", "{c1, s2}", "{c2, s3}"},
		},
		{ // Iteration 5
			incomplete: []string{"{c3}"},
			complete:   []string{"{c1, a1}", "{c1, a2, s1}", "{c1, s2}", "{c2, s3}", "{c2, s4}"},
		},
		{ // Iteration 6
			incomplete: nil,
			complete:   []string{"{c1, a1}", "{c1, a2, s1}", "{c1, s2}", "{c2, s3}", "{c2, s4}", "{c3, a3}"},
		},
	}
	if len(got) != len(want) {
		t.Fatalf("got %d iterations, want %d", len(got), len(want))
	}
	for i := range want {
		if !equalStrings(got[i].incomplete, want[i].incomplete) {
			t.Errorf("iteration %d: Incomplete = %v, want %v", i+1, got[i].incomplete, want[i].incomplete)
		}
		if !equalStrings(got[i].complete, want[i].complete) {
			t.Errorf("iteration %d: Complete = %v, want %v", i+1, got[i].complete, want[i].complete)
		}
	}
	// Example 4.1: the loop iterates exactly as many times as there are
	// results (six).
	if e.Stats().Iterations != 6 {
		t.Errorf("iterations = %d, want 6", e.Stats().Iterations)
	}
}

// TestFDiSeedSemantics checks that FDi(R) contains exactly the results
// holding a tuple of the seed relation.
func TestFDiSeedSemantics(t *testing.T) {
	db := workload.Tourist()
	wantPerSeed := map[int][]string{
		0: {"{c1, a1}", "{c1, a2, s1}", "{c1, s2}", "{c2, s3}", "{c2, s4}", "{c3, a3}"},
		1: {"{c1, a1}", "{c1, a2, s1}", "{c3, a3}"},
		2: {"{c1, a2, s1}", "{c1, s2}", "{c2, s3}", "{c2, s4}"},
	}
	for seed, want := range wantPerSeed {
		got, _, err := FDi(db, seed, Options{})
		if err != nil {
			t.Fatal(err)
		}
		gotStr := formatAll(db, got)
		sort.Strings(want)
		if !equalStrings(gotStr, want) {
			t.Errorf("FD_%d = %v, want %v", seed, gotStr, want)
		}
	}
}

// TestAgainstOracle cross-checks FullDisjunction against the
// brute-force oracle over a grid of synthetic workloads, for every
// strategy/index combination.
func TestAgainstOracle(t *testing.T) {
	type gen func(workload.Config) (*relation.Database, error)
	gens := map[string]gen{
		"chain": workload.Chain,
		"star":  workload.Star,
		"cycle": workload.Cycle,
		"clique": func(c workload.Config) (*relation.Database, error) {
			return workload.Clique(c)
		},
		"random": func(c workload.Config) (*relation.Database, error) {
			return workload.Random(c, 0.4)
		},
	}
	for name, g := range gens {
		for seed := int64(1); seed <= 6; seed++ {
			cfg := workload.Config{
				Relations:         3 + int(seed)%3,
				TuplesPerRelation: 4,
				Domain:            3,
				NullRate:          0.2,
				Seed:              seed,
			}
			if name == "cycle" && cfg.Relations < 3 {
				cfg.Relations = 3
			}
			db, err := g(cfg)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			want := formatAll(db, naive.FullDisjunction(db))
			for _, strategy := range []InitStrategy{InitSingletons, InitSeeded, InitProjected} {
				for _, useIndex := range []bool{false, true} {
					got, _, err := FullDisjunction(db, Options{Strategy: strategy, UseIndex: useIndex})
					if err != nil {
						t.Fatal(err)
					}
					gotStr := formatAll(db, got)
					if !equalStrings(gotStr, want) {
						t.Errorf("%s seed=%d strategy=%s index=%v:\n got  %v\n want %v",
							name, seed, strategy, useIndex, gotStr, want)
					}
				}
			}
		}
	}
}

// TestNoDuplicates verifies Theorem 4.6 on synthetic data: each tuple
// set is emitted exactly once.
func TestNoDuplicates(t *testing.T) {
	cfg := workload.Config{Relations: 5, TuplesPerRelation: 6, Domain: 3, NullRate: 0.15, Seed: 42}
	db, err := workload.Random(cfg, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	for _, strategy := range []InitStrategy{InitSingletons, InitSeeded, InitProjected} {
		got, _, err := FullDisjunction(db, Options{Strategy: strategy, UseIndex: true})
		if err != nil {
			t.Fatal(err)
		}
		seen := make(map[string]bool)
		for _, s := range got {
			if seen[s.Key()] {
				t.Errorf("strategy %s: duplicate result %s", strategy, s.Format(db))
			}
			seen[s.Key()] = true
		}
	}
}

// TestOutputInvariants verifies the three conditions of Definition 2.1
// directly on the algorithm output: every result is JCC; no result is
// contained in another; every JCC singleton-pair extension is covered
// (spot-checked via the oracle's enumeration on small instances).
func TestOutputInvariants(t *testing.T) {
	cfg := workload.Config{Relations: 4, TuplesPerRelation: 5, Domain: 3, NullRate: 0.25, Seed: 7}
	db, err := workload.Cycle(cfg)
	if err != nil {
		t.Fatal(err)
	}
	u := tupleset.NewUniverse(db)
	got, _, err := FullDisjunction(db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range got {
		if !u.JCC(s) {
			t.Errorf("result %s is not JCC", s.Format(db))
		}
	}
	for i, a := range got {
		for j, b := range got {
			if i != j && b.ContainsAll(a) {
				t.Errorf("result %s contained in %s", a.Format(db), b.Format(db))
			}
		}
	}
	// Condition (iii): every JCC tuple set is contained in some result.
	for _, s := range naive.EnumerateConnected(u, func(s *tupleset.Set) bool { return u.JCC(s) }) {
		covered := false
		for _, r := range got {
			if r.ContainsAll(s) {
				covered = true
				break
			}
		}
		if !covered {
			t.Errorf("JCC set %s not represented in FD", s.Format(db))
		}
	}
}

// TestStreamEarlyStop checks PINC behaviour: stopping the stream after
// k results returns k distinct members of the full disjunction without
// computing the rest.
func TestStreamEarlyStop(t *testing.T) {
	cfg := workload.Config{Relations: 4, TuplesPerRelation: 8, Domain: 4, NullRate: 0.1, Seed: 3}
	db, err := workload.Chain(cfg)
	if err != nil {
		t.Fatal(err)
	}
	full, _, err := FullDisjunction(db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fullKeys := make(map[string]bool, len(full))
	for _, s := range full {
		fullKeys[s.Key()] = true
	}
	for _, k := range []int{1, 3, 7, len(full)} {
		var got []*tupleset.Set
		_, err := Stream(db, Options{}, func(s *tupleset.Set) bool {
			got = append(got, s)
			return len(got) < k
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != k {
			t.Fatalf("k=%d: got %d results", k, len(got))
		}
		seen := make(map[string]bool)
		for _, s := range got {
			if !fullKeys[s.Key()] {
				t.Errorf("k=%d: streamed set %s not in FD", k, s.Format(db))
			}
			if seen[s.Key()] {
				t.Errorf("k=%d: duplicate streamed set %s", k, s.Format(db))
			}
			seen[s.Key()] = true
		}
	}
}

// TestCorollary47 checks the space bound: the number of tuple sets
// resident in Complete and Incomplete never exceeds |FDi(R)|.
func TestCorollary47(t *testing.T) {
	cfg := workload.Config{Relations: 4, TuplesPerRelation: 6, Domain: 3, NullRate: 0.2, Seed: 11}
	db, err := workload.Star(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for seed := 0; seed < db.NumRelations(); seed++ {
		got, stats, err := FDi(db, seed, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if stats.MaxResident > len(got) {
			t.Errorf("seed %d: max resident %d exceeds |FDi| = %d", seed, stats.MaxResident, len(got))
		}
		if stats.Iterations != len(got) {
			t.Errorf("seed %d: iterations %d != results %d (Example 4.1 property)",
				seed, stats.Iterations, len(got))
		}
	}
}

// TestBlockExecutionEquivalence checks that block-based execution (§7)
// produces the same output while reducing simulated page reads.
func TestBlockExecutionEquivalence(t *testing.T) {
	cfg := workload.Config{Relations: 4, TuplesPerRelation: 10, Domain: 4, NullRate: 0.1, Seed: 9}
	db, err := workload.Chain(cfg)
	if err != nil {
		t.Fatal(err)
	}
	base, baseStats, err := FullDisjunction(db, Options{BlockSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, bs := range []int{2, 5, 10, 64} {
		got, stats, err := FullDisjunction(db, Options{BlockSize: bs})
		if err != nil {
			t.Fatal(err)
		}
		if !equalStrings(formatAll(db, got), formatAll(db, base)) {
			t.Errorf("block size %d changes output", bs)
		}
		if stats.PageReads >= baseStats.PageReads {
			t.Errorf("block size %d: page reads %d not below tuple-at-a-time %d",
				bs, stats.PageReads, baseStats.PageReads)
		}
	}
}

// TestIndexReducesListScans checks the §7 index ablation: on a workload
// with many results, indexing must reduce the Complete/Incomplete scan
// counter without changing the output.
func TestIndexReducesListScans(t *testing.T) {
	cfg := workload.Config{Relations: 4, TuplesPerRelation: 12, Domain: 3, NullRate: 0.1, Seed: 5}
	db, err := workload.Chain(cfg)
	if err != nil {
		t.Fatal(err)
	}
	plain, plainStats, err := FullDisjunction(db, Options{UseIndex: false})
	if err != nil {
		t.Fatal(err)
	}
	indexed, indexedStats, err := FullDisjunction(db, Options{UseIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	if !equalStrings(formatAll(db, plain), formatAll(db, indexed)) {
		t.Fatal("index changes output")
	}
	if indexedStats.ListScans >= plainStats.ListScans {
		t.Errorf("indexed list scans %d not below unindexed %d",
			indexedStats.ListScans, plainStats.ListScans)
	}
}

func TestEnumeratorErrors(t *testing.T) {
	db := workload.Tourist()
	u := tupleset.NewUniverse(db)
	if _, err := NewEnumerator(u, -1, Options{}); err == nil {
		t.Error("negative seed accepted")
	}
	if _, err := NewEnumerator(u, 3, Options{}); err == nil {
		t.Error("out-of-range seed accepted")
	}
	// Seeded enumerator rejects seeds lacking the seed-relation tuple.
	s := u.Singleton(relation.Ref{Rel: 1, Idx: 0})
	if _, err := NewSeededEnumerator(u, 0, Options{}, []*tupleset.Set{s}, 0); err == nil {
		t.Error("seed set without seed-relation tuple accepted")
	}
}
