package core

import (
	"fmt"

	"repro/internal/relation"
)

// TaskMeta describes one planned task of a partitioned enumeration:
// the per-relation pass it belongs to, the block of seed singletons it
// is seeded with ([SeedLo, SeedHi) within the pass relation), and its
// observability label. It is the plan-time shape of a Task: exactTasks
// and approx.NewParallelCursor build their Task lists from these
// layouts and fd.Explain reports them, so a plan's task partition
// cannot drift from what execution runs.
type TaskMeta struct {
	// Pass is the seed relation of the per-relation pass.
	Pass int `json:"pass"`
	// Block and Blocks place the task within its pass: block Block of
	// Blocks (Blocks is 1 when the pass is not split).
	Block  int `json:"block"`
	Blocks int `json:"blocks"`
	// SeedLo and SeedHi bound the task's seed tuple indices:
	// [SeedLo, SeedHi) of the pass relation.
	SeedLo int `json:"seed_lo"`
	SeedHi int `json:"seed_hi"`
	// Label names the task in observability output.
	Label string `json:"label"`
}

// Seeds returns the number of seed singletons the task starts from.
func (m TaskMeta) Seeds() int { return m.SeedHi - m.SeedLo }

// ExactLayout computes the task partition a parallel exact enumeration
// runs with: one task per per-relation pass and, when workers exceed
// the number of relations, per block of seed singletons within a pass
// (never smaller than minTaskSeeds, see the package comment in
// parallel.go). Relations without tuples contribute no task — they
// seed no pass and own no results.
func ExactLayout(db *relation.Database, workers int) []TaskMeta {
	n := db.NumRelations()
	blocksPerPass := 1
	if n > 0 && workers > n {
		blocksPerPass = (workers + n - 1) / n
	}
	var layout []TaskMeta
	for pass := 0; pass < n; pass++ {
		length := db.Relation(pass).Len()
		if length == 0 {
			continue
		}
		blocks := blocksPerPass
		if most := length / minTaskSeeds; blocks > most {
			blocks = most
		}
		if blocks < 1 {
			blocks = 1
		}
		for b := 0; b < blocks; b++ {
			label := fmt.Sprintf("pass %d", pass)
			if blocks > 1 {
				label = fmt.Sprintf("pass %d block %d/%d", pass, b+1, blocks)
			}
			layout = append(layout, TaskMeta{
				Pass:   pass,
				Block:  b,
				Blocks: blocks,
				SeedLo: b * length / blocks,
				SeedHi: (b + 1) * length / blocks,
				Label:  label,
			})
		}
	}
	return layout
}

// ApproxLayout computes the task partition a parallel approximate
// enumeration runs with: one task per per-relation pass (passes are
// never block-split — the approximate walk has no seeded enumerator to
// restrict, see approx.NewParallelCursor).
func ApproxLayout(db *relation.Database) []TaskMeta {
	layout := make([]TaskMeta, db.NumRelations())
	for pass := range layout {
		layout[pass] = TaskMeta{
			Pass:   pass,
			Blocks: 1,
			SeedHi: db.Relation(pass).Len(),
			Label:  fmt.Sprintf("approx pass %d", pass),
		}
	}
	return layout
}
