// Package core implements INCREMENTALFD and GETNEXTRESULT (Figures 1
// and 2 of Cohen & Sagiv 2007) together with the engineering
// refinements of Section 7: hash-indexed Complete/Incomplete lists,
// block-based execution, and the alternative initialisations of
// Incomplete that minimise repeated work across the n per-relation
// passes of a full-disjunction computation.
package core

import (
	"fmt"

	"repro/internal/relation"
	"repro/internal/tupleset"
)

// Enumerator incrementally produces FDi(R) — the tuple sets of the full
// disjunction that contain a tuple of the seed relation — one result
// per Next call, in incremental polynomial time (Theorem 4.10).
type Enumerator struct {
	u          *tupleset.Universe
	seed       int
	opts       Options
	stats      Stats
	incomplete *IncompleteQueue
	complete   *CompleteStore
	scan       Scanner
	// minIdx restricts the enumeration to results anchored at a
	// seed-relation tuple with index ≥ minIdx. Zero enumerates all of
	// FDi(R); NewDeltaEnumerator sets it to the first appended index so
	// candidates whose seed-relation member predates the append are
	// discarded instead of enqueued (their results exist in the old
	// full disjunction already).
	minIdx int32
}

// NewEnumerator prepares an enumeration of FDi(R) with the textbook
// initialisation (Fig 1 lines 1–4): Incomplete holds {t} for every
// tuple t of the seed relation.
func NewEnumerator(u *tupleset.Universe, seed int, opts Options) (*Enumerator, error) {
	e, err := newBareEnumerator(u, seed, opts, 0)
	if err != nil {
		return nil, err
	}
	rel := u.DB.Relation(seed)
	for i := 0; i < rel.Len(); i++ {
		e.incomplete.Push(u.Singleton(relation.Ref{Rel: int32(seed), Idx: int32(i)}))
	}
	return e, nil
}

// NewSeededEnumerator prepares an enumeration whose Incomplete list is
// initialised with the given tuple sets and whose database scans start
// at relation minRel (Section 7 drivers, PriorityIncrementalFD). The
// caller is responsible for the initialisation conditions of Remarks
// 4.3 and 4.5: every seed set is JCC and contains a tuple of the seed
// relation; every tuple of the seed relation is covered; and no two
// seed sets are contained in one result.
func NewSeededEnumerator(u *tupleset.Universe, seed int, opts Options, init []*tupleset.Set, minRel int) (*Enumerator, error) {
	e, err := newBareEnumerator(u, seed, opts, minRel)
	if err != nil {
		return nil, err
	}
	for _, s := range init {
		if !s.HasRelation(seed) {
			return nil, fmt.Errorf("core: seed set %s lacks a tuple of relation %d", s.Format(u.DB), seed)
		}
		e.incomplete.Push(s)
	}
	return e, nil
}

func newBareEnumerator(u *tupleset.Universe, seed int, opts Options, minRel int) (*Enumerator, error) {
	if seed < 0 || seed >= u.DB.NumRelations() {
		return nil, fmt.Errorf("core: seed relation %d out of range [0,%d)", seed, u.DB.NumRelations())
	}
	e := &Enumerator{
		u:          u,
		seed:       seed,
		opts:       opts,
		incomplete: NewIncompleteQueue(u, seed, opts.UseIndex),
		complete:   NewCompleteStore(u, opts.UseIndex),
	}
	e.scan = Scanner{db: u.DB, block: opts.blockSize(), minRel: minRel, stats: &e.stats,
		pool: opts.Pool, useJoinIndex: opts.UseJoinIndex}
	return e, nil
}

// Stats returns the counters accumulated so far.
func (e *Enumerator) Stats() Stats { return e.stats }

// Complete exposes the store of already-produced results.
func (e *Enumerator) Complete() *CompleteStore { return e.complete }

// Pending returns the number of tuple sets currently awaiting
// extension.
func (e *Enumerator) Pending() int { return e.incomplete.Len() }

// Next produces the next tuple set of FDi(R), or ok=false when the
// enumeration is finished. It performs one iteration of the while loop
// of Fig 1: pop a tuple set from Incomplete, extend it maximally, emit
// it, and enqueue the new candidate subsets discovered along the way.
func (e *Enumerator) Next() (*tupleset.Set, bool) {
	T, ok := e.incomplete.Pop()
	if !ok {
		return nil, false
	}
	result := getNextResult(e.u, e.seed, &e.scan, e.minIdx, T, e.incomplete, e.complete, &e.stats)
	e.complete.Add(result)
	e.stats.Iterations++
	e.stats.Emitted++
	if resident := e.complete.Len() + e.incomplete.Len(); resident > e.stats.MaxResident {
		e.stats.MaxResident = resident
	}
	if e.opts.Trace != nil {
		e.opts.Trace(e.stats.Iterations, result.Clone(), e.incomplete.Snapshot(), snapshotComplete(e.complete))
	}
	return result, true
}

// All drains the enumeration and returns every tuple set of FDi(R).
func (e *Enumerator) All() []*tupleset.Set {
	var out []*tupleset.Set
	for {
		t, ok := e.Next()
		if !ok {
			return out
		}
		out = append(out, t)
	}
}

func snapshotComplete(cs *CompleteStore) []*tupleset.Set {
	out := make([]*tupleset.Set, cs.Len())
	for i, s := range cs.Sets() {
		out[i] = s.Clone()
	}
	return out
}

// Pool abstracts the Incomplete container of GETNEXTRESULT: the FIFO
// list of Fig 1 or the priority queue of Fig 3 (package rank).
type Pool interface {
	// TryAbsorb implements lines 14–15: if the pool holds a set S with
	// JCC(S ∪ t), replace S by S ∪ t in place and report true. anchor
	// is t's seed-relation tuple.
	TryAbsorb(t *tupleset.Set, anchor relation.Ref, stats *Stats) bool
	// Push appends a new tuple set (line 18).
	Push(t *tupleset.Set)
}

// GetNextResult is GETNEXTRESULT (Fig 2) minus the pop of line 1, which
// the caller performs (the priority variant of Fig 3 pops from a heap
// instead of a FIFO). T is mutated into the result and returned.
//
//	lines 2–6: maximally extend T with tuples tg such that JCC(T∪{tg});
//	lines 7–18: for every remaining tuple tb, form the maximal JCC
//	  subset T' of T∪{tb} containing tb (footnote 3); if T' has a tuple
//	  of the seed relation and is not contained in a Complete set and
//	  cannot be merged into an Incomplete set, append it to Incomplete.
//
// minRel restricts database scans to relations minRel..n-1 (zero scans
// everything); opts supplies the block size for simulated page reads.
func GetNextResult(u *tupleset.Universe, seed int, opts Options, minRel int, T *tupleset.Set,
	incomplete Pool, complete *CompleteStore, stats *Stats) *tupleset.Set {
	scan := Scanner{db: u.DB, block: opts.blockSize(), minRel: minRel, stats: stats,
		pool: opts.Pool, useJoinIndex: opts.UseJoinIndex}
	return getNextResult(u, seed, &scan, 0, T, incomplete, complete, stats)
}

// getNextResult additionally takes minIdx, the delta-mode anchor floor:
// a discovered candidate whose seed-relation tuple has index < minIdx
// is dropped at line 9, exactly as a candidate with no seed tuple is.
// With minIdx = 0 this is GETNEXTRESULT verbatim.
func getNextResult(u *tupleset.Universe, seed int, scan *Scanner, minIdx int32, T *tupleset.Set,
	incomplete Pool, complete *CompleteStore, stats *Stats) *tupleset.Set {

	var sig tupleset.SigCounters
	defer stats.AddSig(&sig)

	// Lines 2–6: extension to a maximal JCC set. Each sweep adds at
	// least one tuple or terminates; a result has at most n tuples, so
	// there are at most n+1 sweeps (cost O(s·n), Theorem 4.8). With the
	// join index, each sweep visits only equi-match candidates of the
	// current members; a tuple reachable only through a member added
	// mid-sweep becomes a candidate in the next sweep, so the fixpoint
	// is still a maximal JCC set.
	for changed := true; changed; {
		changed = false
		scan.ForEachExtension(T, func(ref relation.Ref) bool {
			if T.Has(ref) {
				return true
			}
			stats.JCCChecks++
			if u.JCCWithTupleCounted(T, ref, &sig) {
				T.Add(ref)
				changed = true
			}
			return true
		})
	}

	// Lines 7–18: discover new candidate subsets. One candidate buffer
	// is recycled across the whole scan — the containment and absorb
	// probes do not retain it — and is replaced only when a candidate
	// survives every filter and enters Incomplete.
	tPrime := u.NewSet()
	scan.ForEachDiscovery(T, seed, func(tb relation.Ref) bool {
		if T.Has(tb) {
			return true
		}
		u.MaximalSubsetInto(tPrime, T, tb, &sig)
		stats.JCCChecks++
		anchor, hasSeed := tPrime.Member(seed)
		if !hasSeed || anchor.Idx < minIdx {
			return true // line 9: T' has no (delta-mode: no new) tuple of Ri
		}
		if complete.ContainsSuperset(tPrime, anchor, stats) {
			return true // line 11: already represented in Complete
		}
		if incomplete.TryAbsorb(tPrime, anchor, stats) {
			return true // lines 14–15: merged into an Incomplete set
		}
		incomplete.Push(tPrime) // line 18
		tPrime = u.NewSet()
		return true
	})
	u.ReleaseSet(tPrime)
	return T
}
