package core

import (
	"fmt"

	"repro/internal/tupleset"
)

// Stats collects instrumentation counters for one execution. The
// complexity-shape experiments (E4, E5, E9) read these counters instead
// of relying purely on wall-clock time.
type Stats struct {
	// Iterations counts calls to GetNextResult (the while loop of
	// Fig 1, line 5). By Corollary 4.7 it equals the number of results.
	Iterations int
	// Emitted counts tuple sets returned to the caller.
	Emitted int
	// JCCChecks counts join-consistency predicate evaluations
	// (JCCWithTuple, UnionJCC and consistency walks).
	JCCChecks int64
	// TuplesScanned counts tuples visited by the database scans of
	// GETNEXTRESULT lines 2 and 7.
	TuplesScanned int64
	// ListScans counts tuple sets examined while searching Complete and
	// Incomplete (lines 11 and 14). The §7 hash index exists to shrink
	// this counter.
	ListScans int64
	// PageReads counts simulated block fetches performed by the
	// database scans; block-based execution (§7) reduces it by the
	// block-size factor.
	PageReads int64
	// IndexProbes counts posting-list lookups in the equi-join
	// candidate index (Options.UseJoinIndex).
	IndexProbes int64
	// TuplesSkipped counts tuples a full sweep would have visited that
	// the candidate-only iteration avoided; TuplesScanned + the skip
	// count of one scan equals the sweep's scope, so the pair makes the
	// saving of the join index directly observable.
	TuplesSkipped int64
	// SigHits counts predicate evaluations answered by the attribute-
	// binding signature fast path (O(arity) code compares and bitmask
	// words instead of pairwise tuple walks).
	SigHits int64
	// SigRebuilds counts lazy signature rebuilds of stale tuple sets
	// (a set goes stale when a member is removed or replaced).
	SigRebuilds int64
	// MaxResident tracks the peak number of tuple sets simultaneously
	// held in Complete and Incomplete (Corollary 4.7 bounds it by the
	// number of result tuple sets).
	MaxResident int
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Iterations += other.Iterations
	s.Emitted += other.Emitted
	s.JCCChecks += other.JCCChecks
	s.TuplesScanned += other.TuplesScanned
	s.ListScans += other.ListScans
	s.PageReads += other.PageReads
	s.IndexProbes += other.IndexProbes
	s.TuplesSkipped += other.TuplesSkipped
	s.SigHits += other.SigHits
	s.SigRebuilds += other.SigRebuilds
	if other.MaxResident > s.MaxResident {
		s.MaxResident = other.MaxResident
	}
}

// Sub returns the counter deltas s − prev for the additive fields —
// the per-span attribution of work done between two Stats snapshots of
// one cursor. MaxResident is a high-water mark, not additive: the
// difference keeps s's value (the peak as of the later snapshot).
func (s Stats) Sub(prev Stats) Stats {
	return Stats{
		Iterations:    s.Iterations - prev.Iterations,
		Emitted:       s.Emitted - prev.Emitted,
		JCCChecks:     s.JCCChecks - prev.JCCChecks,
		TuplesScanned: s.TuplesScanned - prev.TuplesScanned,
		ListScans:     s.ListScans - prev.ListScans,
		PageReads:     s.PageReads - prev.PageReads,
		IndexProbes:   s.IndexProbes - prev.IndexProbes,
		TuplesSkipped: s.TuplesSkipped - prev.TuplesSkipped,
		SigHits:       s.SigHits - prev.SigHits,
		SigRebuilds:   s.SigRebuilds - prev.SigRebuilds,
		MaxResident:   s.MaxResident,
	}
}

// Map renders the counters by name — the span-stats form the
// observability layer records (trace spans carry map[string]int64, so
// internal/obs stays dependency-free). Zero counters are omitted to
// keep serialised traces small; summing the maps of telescoping Sub
// deltas therefore still reproduces every non-zero final counter,
// except max_resident, which is a high-water mark and not additive.
func (s Stats) Map() map[string]int64 {
	m := make(map[string]int64, 11)
	put := func(k string, v int64) {
		if v != 0 {
			m[k] = v
		}
	}
	put("iterations", int64(s.Iterations))
	put("emitted", int64(s.Emitted))
	put("jcc_checks", s.JCCChecks)
	put("tuples_scanned", s.TuplesScanned)
	put("list_scans", s.ListScans)
	put("page_reads", s.PageReads)
	put("index_probes", s.IndexProbes)
	put("tuples_skipped", s.TuplesSkipped)
	put("sig_hits", s.SigHits)
	put("sig_rebuilds", s.SigRebuilds)
	put("max_resident", int64(s.MaxResident))
	return m
}

// AddSig folds a tupleset signature counter block into s. Callers that
// evaluate the Counted predicate variants with a local counter block
// flush it here.
func (s *Stats) AddSig(c *tupleset.SigCounters) {
	s.SigHits += c.Hits
	s.SigRebuilds += c.Rebuilds
}

// String renders the counters compactly.
func (s Stats) String() string {
	return fmt.Sprintf("iters=%d emitted=%d jcc=%d sigHits=%d sigRebuilds=%d scanned=%d skipped=%d probes=%d listScans=%d pageReads=%d maxResident=%d",
		s.Iterations, s.Emitted, s.JCCChecks, s.SigHits, s.SigRebuilds, s.TuplesScanned, s.TuplesSkipped, s.IndexProbes,
		s.ListScans, s.PageReads, s.MaxResident)
}
