package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/tupleset"
	"repro/internal/workload"
)

// TestParallelBlockPartitionSetIdentity forces intra-pass block
// partitioning (more workers than relations) and checks the merged
// stream is set-identical to the sequential driver.
func TestParallelBlockPartitionSetIdentity(t *testing.T) {
	db, err := workload.Chain(workload.Config{
		Relations: 3, TuplesPerRelation: 24, Domain: 4, NullRate: 0.1, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{UseIndex: true}
	want, _, err := FullDisjunction(db, opts)
	if err != nil {
		t.Fatal(err)
	}
	wantKeys := make(map[string]bool, len(want))
	for _, s := range want {
		wantKeys[s.Key()] = true
	}
	for _, workers := range []int{4, 7, 12} {
		u := tupleset.NewUniverse(db)
		tasks := exactTasks(u, opts, workers)
		if workers > db.NumRelations() && len(tasks) <= db.NumRelations() {
			t.Fatalf("workers=%d: expected block-split tasks, got %d", workers, len(tasks))
		}
		c := NewTaskCursor(context.Background(), tasks, workers, nil)
		got := make(map[string]bool)
		for {
			s, ok := c.Next()
			if !ok {
				break
			}
			if got[s.Key()] {
				t.Fatalf("workers=%d: duplicate result %s", workers, s.Format(db))
			}
			got[s.Key()] = true
		}
		if err := c.Err(); err != nil {
			t.Fatal(err)
		}
		c.Close()
		if len(got) != len(wantKeys) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(got), len(wantKeys))
		}
		for k := range wantKeys {
			if !got[k] {
				t.Fatalf("workers=%d: missing result %s", workers, k)
			}
		}
		if s := c.Stats(); s.Emitted != len(want) {
			t.Fatalf("workers=%d: Emitted=%d, want %d", workers, s.Emitted, len(want))
		}
	}
}

// fakeEnum feeds canned sets and counts concurrently open tasks.
type fakeEnum struct {
	sets    []*tupleset.Set
	active  *atomic.Int32
	maxSeen *atomic.Int32
}

func (f *fakeEnum) Next() (*tupleset.Set, bool) {
	runtime.Gosched() // give other workers a chance to overlap
	if len(f.sets) == 0 {
		f.active.Add(-1)
		return nil, false
	}
	s := f.sets[0]
	f.sets = f.sets[1:]
	return s, true
}

func (f *fakeEnum) Stats() Stats { return Stats{} }

// TestParallelWorkerPoolBound proves the executor runs at most
// `workers` tasks concurrently even when the task count is far larger
// — the work-queue replacement for the old
// one-goroutine-per-relation-behind-a-semaphore shape.
func TestParallelWorkerPoolBound(t *testing.T) {
	db := workload.Tourist()
	u := tupleset.NewUniverse(db)
	var active, maxSeen atomic.Int32
	const workers, taskCount = 3, 40
	tasks := make([]Task, taskCount)
	for i := range tasks {
		tasks[i] = Task{
			Open: func() (TaskEnumerator, error) {
				n := active.Add(1)
				for {
					m := maxSeen.Load()
					if n <= m || maxSeen.CompareAndSwap(m, n) {
						break
					}
				}
				return &fakeEnum{sets: []*tupleset.Set{u.NewSet()}, active: &active, maxSeen: &maxSeen}, nil
			},
			Owns: func(*tupleset.Set) bool { return true },
		}
	}
	c := NewTaskCursor(context.Background(), tasks, workers, nil)
	n := 0
	for {
		_, ok := c.Next()
		if !ok {
			break
		}
		n++
	}
	c.Close()
	if n != taskCount {
		t.Fatalf("delivered %d results, want %d", n, taskCount)
	}
	if m := maxSeen.Load(); m > workers {
		t.Fatalf("%d tasks ran concurrently, worker bound is %d", m, workers)
	}
}

// TestParallelEarlyCloseLeaksNothing reads one result, closes, and
// checks every worker goroutine has exited by the time Close returns.
func TestParallelEarlyCloseLeaksNothing(t *testing.T) {
	db, err := workload.Chain(workload.Config{
		Relations: 4, TuplesPerRelation: 24, Domain: 4, NullRate: 0.1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	baseline := runtime.NumGoroutine()
	c, err := NewParallelCursor(context.Background(), db, Options{UseIndex: true}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Next(); !ok {
		t.Fatal("no first result")
	}
	c.Close()
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > baseline {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked after Close: %d > baseline %d", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(time.Millisecond)
	}
	if c.Err() != nil {
		t.Fatalf("voluntary Close set Err: %v", c.Err())
	}
}

// TestParallelCancellation cancels mid-stream and checks the pending
// Next fails promptly with the context error and workers exit.
func TestParallelCancellation(t *testing.T) {
	db, err := workload.Chain(workload.Config{
		Relations: 4, TuplesPerRelation: 24, Domain: 4, NullRate: 0.1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	c, err := NewParallelCursor(ctx, db, Options{UseIndex: true}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Next(); !ok {
		t.Fatal("no first result")
	}
	cancel()
	for {
		if _, ok := c.Next(); !ok {
			break
		}
	}
	if !errors.Is(c.Err(), context.Canceled) {
		t.Fatalf("Err=%v, want context.Canceled", c.Err())
	}
	c.Close()
}

// TestParallelTaskOpenError propagates a task failure to the consumer.
func TestParallelTaskOpenError(t *testing.T) {
	boom := fmt.Errorf("boom")
	tasks := []Task{{
		Open: func() (TaskEnumerator, error) { return nil, boom },
		Owns: func(*tupleset.Set) bool { return true },
	}}
	c := NewTaskCursor(context.Background(), tasks, 2, nil)
	if _, ok := c.Next(); ok {
		t.Fatal("result from failing task")
	}
	if !errors.Is(c.Err(), boom) {
		t.Fatalf("Err=%v, want boom", c.Err())
	}
	c.Close()
}
