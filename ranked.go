package fd

import (
	"context"

	"repro/internal/rank"
)

// RankFunc is a ranking function over tuple sets (Section 5). Built-in
// implementations: FMax (monotonically 1-determined), PairSum
// (2-determined), PaperTriple (3-determined) and FSum (not
// c-determined; usable only with brute force — top-(1,fsum) is NP-hard,
// Proposition 5.1).
type RankFunc = rank.Func

// Ranked pairs a result with its rank.
type Ranked = rank.Result

// FMax returns the ranking function fmax(T) = max{imp(t) | t ∈ T}.
func FMax() RankFunc { return rank.FMax{} }

// FSum returns fsum(T) = Σ imp(t). It cannot drive ranked enumeration.
func FSum() RankFunc { return rank.FSum{} }

// PairSum returns the monotonically 2-determined function
// f(T) = max over connected pairs of imp sums.
func PairSum() RankFunc { return rank.PairSum() }

// PaperTriple returns the paper's 3-determined example
// f(T) = max{imp(t1) + imp(t2)·imp(t3) | {t1,t2,t3} ⊆ T connected}.
func PaperTriple() RankFunc { return rank.PaperTriple() }

// StreamRanked yields the members of FD(R) in non-increasing rank order
// under a monotonically c-determined ranking function
// (PRIORITYINCREMENTALFD, Fig 3); return false from yield to stop.
//
// Deprecated: use Open with Query{Mode: ModeRanked, Rank: "<name>"}
// and pull from the Results cursor. StreamRanked remains for custom
// (unnamed) RankFunc implementations.
func StreamRanked(db *Database, f RankFunc, opts Options, yield func(Ranked) bool) (Stats, error) {
	return rank.StreamRanked(db, f, opts, yield)
}

// RankedCursor is the pull-based form of StreamRanked: results arrive
// one per Next call, in non-increasing rank order. Like Cursor it holds
// explicit state and no goroutine.
type RankedCursor = rank.Cursor

// NewRankedCursor prepares a pull-based ranked enumeration. The Fig 3
// preprocessing (small-set enumeration and queue merging) happens here;
// each Next call is then one priority-queue extraction.
//
// Deprecated: use Open with Query{Mode: ModeRanked, Rank: "<name>"};
// the Results cursor it returns adds context cancellation.
func NewRankedCursor(db *Database, f RankFunc, opts Options) (*RankedCursor, error) {
	return rank.NewCursor(context.Background(), db, f, opts)
}

// TopK solves the top-(k,f) full-disjunction problem: the k highest
// ranking members of FD(R), in rank order, in time polynomial in the
// input and k (Theorem 5.5).
//
// Deprecated: use Open with Query{Mode: ModeRanked, Rank: "<name>",
// K: k} and drain the Results cursor.
func TopK(db *Database, f RankFunc, k int, opts Options) ([]Ranked, Stats, error) {
	return rank.TopK(db, f, k, opts)
}

// Threshold solves the (τ,f)-threshold full-disjunction problem
// (Remark 5.6): every member of FD(R) ranking at least tau, in rank
// order.
//
// Deprecated: use Open with Query{Mode: ModeRanked, Rank: "<name>",
// RankTau: tau} and drain the Results cursor.
func Threshold(db *Database, f RankFunc, tau float64, opts Options) ([]Ranked, Stats, error) {
	return rank.Threshold(db, f, tau, opts)
}
